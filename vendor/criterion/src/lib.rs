//! Offline stand-in for the `criterion` crate.
//!
//! The build environment has no network access to a cargo registry, so
//! the workspace vendors the subset of the criterion API its benches
//! use: `criterion_group!`/`criterion_main!`, benchmark groups with
//! `bench_function`/`bench_with_input`, `BenchmarkId`, `Throughput`, and
//! `Bencher::iter`. Instead of criterion's statistical machinery, each
//! bench body runs a handful of timed iterations and prints the median —
//! enough for regress-spotting by eye and for keeping the bench targets
//! compiling. Swap the workspace dependency back to crates.io
//! `criterion = "0.5"` when a registry is reachable.

#![forbid(unsafe_code)]

use std::fmt::Display;
use std::time::{Duration, Instant};

/// Top-level benchmark driver.
#[derive(Default)]
pub struct Criterion {}

impl Criterion {
    /// Start a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            _parent: self,
            name: name.into(),
            throughput: None,
        }
    }

    /// Run one stand-alone benchmark.
    pub fn bench_function<F>(&mut self, name: impl Into<String>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_one(&name.into(), None, &mut f);
        self
    }
}

/// A group of benchmarks sharing a name prefix and settings.
pub struct BenchmarkGroup<'a> {
    _parent: &'a mut Criterion,
    name: String,
    throughput: Option<Throughput>,
}

impl BenchmarkGroup<'_> {
    /// Accepted for API compatibility; the stub ignores sample counts.
    pub fn sample_size(&mut self, _n: usize) -> &mut Self {
        self
    }

    /// Accepted for API compatibility; the stub ignores time budgets.
    pub fn measurement_time(&mut self, _d: Duration) -> &mut Self {
        self
    }

    /// Accepted for API compatibility; the stub ignores warm-up time.
    pub fn warm_up_time(&mut self, _d: Duration) -> &mut Self {
        self
    }

    /// Record the amount of work per iteration, reported as a rate.
    pub fn throughput(&mut self, t: Throughput) -> &mut Self {
        self.throughput = Some(t);
        self
    }

    /// Run a benchmark in this group.
    pub fn bench_function<F>(&mut self, id: impl IntoBenchmarkId, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id = id.into_benchmark_id();
        run_one(
            &format!("{}/{}", self.name, id.label()),
            self.throughput,
            &mut f,
        );
        self
    }

    /// Run a benchmark parameterized by an input value.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: impl IntoBenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let id = id.into_benchmark_id();
        run_one(
            &format!("{}/{}", self.name, id.label()),
            self.throughput,
            &mut |b: &mut Bencher| f(b, input),
        );
        self
    }

    /// Finish the group (a no-op in the stub).
    pub fn finish(self) {}
}

/// A benchmark's identifier: function name plus an optional parameter.
pub struct BenchmarkId {
    function: String,
    parameter: Option<String>,
}

impl BenchmarkId {
    /// Identify a benchmark by function name and parameter value.
    pub fn new(function: impl Into<String>, parameter: impl Display) -> Self {
        BenchmarkId {
            function: function.into(),
            parameter: Some(parameter.to_string()),
        }
    }

    /// Identify a benchmark by parameter value alone.
    pub fn from_parameter(parameter: impl Display) -> Self {
        BenchmarkId {
            function: String::new(),
            parameter: Some(parameter.to_string()),
        }
    }

    fn label(&self) -> String {
        match (&self.function.is_empty(), &self.parameter) {
            (false, Some(p)) => format!("{}/{}", self.function, p),
            (false, None) => self.function.clone(),
            (true, Some(p)) => p.clone(),
            (true, None) => String::new(),
        }
    }
}

/// Conversion into a [`BenchmarkId`], so plain strings work too.
pub trait IntoBenchmarkId {
    /// Convert into an id.
    fn into_benchmark_id(self) -> BenchmarkId;
}

impl IntoBenchmarkId for BenchmarkId {
    fn into_benchmark_id(self) -> BenchmarkId {
        self
    }
}

impl IntoBenchmarkId for &str {
    fn into_benchmark_id(self) -> BenchmarkId {
        BenchmarkId {
            function: self.to_string(),
            parameter: None,
        }
    }
}

impl IntoBenchmarkId for String {
    fn into_benchmark_id(self) -> BenchmarkId {
        BenchmarkId {
            function: self,
            parameter: None,
        }
    }
}

/// Work performed per iteration, for rate reporting.
#[derive(Clone, Copy, Debug)]
pub enum Throughput {
    /// Bytes processed per iteration.
    Bytes(u64),
    /// Elements processed per iteration.
    Elements(u64),
}

/// Passed to each benchmark body; call [`Bencher::iter`] with the code
/// under test.
pub struct Bencher {
    samples: Vec<Duration>,
}

/// Whether the bench binary was invoked with `--quick` (e.g.
/// `cargo bench -- --quick`): run a single timed iteration per bench,
/// the CI profile for catching perf cliffs without CI-length runs.
fn quick_mode() -> bool {
    std::env::args().any(|a| a == "--quick")
}

impl Bencher {
    /// Time `f`, a few iterations (one under `--quick`), recording each.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        let iters = if quick_mode() { 1 } else { 3 };
        for _ in 0..iters {
            // The bench harness times the host by definition (see clippy.toml).
            #[allow(clippy::disallowed_methods)]
            let start = Instant::now();
            let out = f();
            self.samples.push(start.elapsed());
            drop(out);
        }
    }
}

fn run_one<F: FnMut(&mut Bencher)>(label: &str, throughput: Option<Throughput>, f: &mut F) {
    let mut b = Bencher {
        samples: Vec::new(),
    };
    f(&mut b);
    b.samples.sort_unstable();
    let median = b
        .samples
        .get(b.samples.len() / 2)
        .copied()
        .unwrap_or_default();
    let rate = match throughput {
        Some(Throughput::Bytes(n)) if median > Duration::ZERO => {
            format!(
                "  ({:.1} MB/s)",
                n as f64 / median.as_secs_f64() / 1_000_000.0
            )
        }
        Some(Throughput::Elements(n)) if median > Duration::ZERO => {
            format!("  ({:.0} elem/s)", n as f64 / median.as_secs_f64())
        }
        _ => String::new(),
    };
    println!("bench {label:<60} median {median:>12.3?}{rate}");
}

/// Collect benchmark functions into a group runner.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        pub fn $group() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
    (name = $group:ident; config = $cfg:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $group() {
            let mut criterion = { let _ = &$cfg; $crate::Criterion::default() };
            $( $target(&mut criterion); )+
        }
    };
}

/// Generate a `main` that runs the given groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            // `cargo bench`/`cargo test` pass harness flags; ignore them.
            $( $group(); )+
        }
    };
}

/// Re-export mirroring `criterion::black_box` (deprecated upstream in
/// favour of `std::hint::black_box`, which the benches already use).
pub use std::hint::black_box;

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_bench(c: &mut Criterion) {
        let mut g = c.benchmark_group("stub");
        g.sample_size(10);
        g.throughput(Throughput::Elements(100));
        g.bench_function("plain", |b| b.iter(|| (0..100u64).sum::<u64>()));
        g.bench_with_input(BenchmarkId::new("with_input", 7), &7u64, |b, &x| {
            b.iter(|| x * 2)
        });
        g.finish();
    }

    #[test]
    fn group_api_runs_bodies() {
        let mut c = Criterion::default();
        sample_bench(&mut c);
        c.bench_function("standalone", |b| b.iter(|| 1 + 1));
    }

    criterion_group!(test_group, sample_bench);

    #[test]
    fn macro_generated_group_runs() {
        test_group();
    }
}
