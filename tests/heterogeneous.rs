//! Integration: §5 and §7.5 — unequal bandwidths, unequal request
//! difficulties, unequal RTTs.

use speakup_core::client::ClientProfile;
use speakup_exp::scenario::{ClientSpec, Mode, Scenario};
use speakup_net::time::SimDuration;

#[test]
fn bandwidth_ladder_is_proportional() {
    // 2 clients per rung at 0.5/1.0/1.5 Mbit/s, all good, c = 4.
    let mut s = Scenario::new("ladder", 4.0, Mode::Auction);
    for i in 1..=3u64 {
        s.add_clients(
            2,
            ClientSpec::lan(ClientProfile::good()).bandwidth(500_000 * i),
        );
    }
    let r = speakup_exp::run(&s.duration(SimDuration::from_secs(60)));
    let mut rung = [0u64; 3];
    for (i, pc) in r.per_client.iter().enumerate() {
        rung[i / 2] += pc.served;
    }
    let total: u64 = rung.iter().sum();
    for (i, &served) in rung.iter().enumerate() {
        let share = served as f64 / total as f64;
        let ideal = (i as f64 + 1.0) / 6.0;
        assert!(
            (share - ideal).abs() < 0.08,
            "rung {i}: share {share} vs ideal {ideal}"
        );
    }
}

#[test]
fn hard_requests_cheat_plain_auction_but_not_quantum() {
    let hard = 4.0;
    let mk = |mode| {
        let mut s = Scenario::new("hetero", 20.0, mode);
        s.add_clients(5, ClientSpec::lan(ClientProfile::good()));
        s.add_clients(5, ClientSpec::lan(ClientProfile::bad().difficulty(hard)));
        s.duration(SimDuration::from_secs(40))
    };
    let plain = speakup_exp::run(&mk(Mode::Auction));
    let quantum = speakup_exp::run(&mk(Mode::Quantum {
        quantum: SimDuration::from_millis(10),
    }));
    let work_share = |r: &speakup_exp::RunReport| {
        let g = r.allocation.good as f64;
        let b = r.allocation.bad as f64 * hard;
        g / (g + b)
    };
    let plain_share = work_share(&plain);
    let quantum_share = work_share(&quantum);
    assert!(
        plain_share < 0.4,
        "plain auction should be cheated by hard requests: {plain_share}"
    );
    assert!(
        quantum_share > plain_share + 0.1,
        "quantum auction must claw back work share: {quantum_share} vs {plain_share}"
    );
}

#[test]
fn quantum_front_end_suspends_and_resumes_on_the_server() {
    // Make preemption certain: two very long requests contending.
    let mut s = Scenario::new(
        "preempt",
        2.0,
        Mode::Quantum {
            quantum: SimDuration::from_millis(50),
        },
    );
    s.add_clients(4, ClientSpec::lan(ClientProfile::good().difficulty(10.0)));
    let r = speakup_exp::run(&s.duration(SimDuration::from_secs(30)));
    // Requests take ~5 s each; with 4 eager clients there must be churn,
    // and everything completed still adds up.
    assert!(r.allocation.good > 0);
    assert!(r.server_utilization > 0.8, "{}", r.server_utilization);
}

#[test]
fn rtt_hurts_good_clients_not_bad() {
    let mk = |bad: bool| {
        let mut s = Scenario::new("rtt", 4.0, Mode::Auction);
        for i in 1..=3u64 {
            let p = if bad {
                ClientProfile::bad()
            } else {
                ClientProfile::good()
            };
            s.add_clients(
                3,
                ClientSpec::lan(p).delay(SimDuration::from_millis(50 * i)),
            );
        }
        s.duration(SimDuration::from_secs(60))
    };
    let good = speakup_exp::run(&mk(false));
    let bad = speakup_exp::run(&mk(true));
    let spread = |r: &speakup_exp::RunReport| {
        let mut cat = [0u64; 3];
        for (i, pc) in r.per_client.iter().enumerate() {
            cat[i / 3] += pc.served;
        }
        let tot: u64 = cat.iter().sum();
        (cat[0] as f64 / tot as f64, cat[2] as f64 / tot as f64)
    };
    let (g_short, g_long) = spread(&good);
    let (b_short, b_long) = spread(&bad);
    // Good: the short-RTT rung does no worse than the long-RTT rung
    // (paper: shorter RTT pays faster). Bad: roughly flat.
    assert!(
        g_short >= g_long - 0.05,
        "good short {g_short} vs long {g_long}"
    );
    // Paper's bound: nobody below half or above double the ideal.
    for v in [g_short, g_long, b_short, b_long] {
        assert!((0.33 / 2.0..=0.67).contains(&v), "share {v} out of range");
    }
}
