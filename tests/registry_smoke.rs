//! Smoke and determinism coverage for the scenario registry and the
//! `speakup` driver — the CLI path every former `fig*` binary now routes
//! through.
//!
//! * every simulated entry runs for a few simulated seconds and yields a
//!   sane [`RunReport`] (requests generated, utilization ∈ [0,1]);
//! * the same entry + seed produces byte-identical JSON through the
//!   driver, the determinism contract replicates rely on.

use speakup_exp::driver::{self, Command};
use speakup_exp::registry::{self, RunOptions};
use speakup_net::time::SimDuration;

fn quick(seconds: u64, seeds: u32) -> RunOptions {
    RunOptions {
        duration: Some(SimDuration::from_secs(seconds)),
        seed: 0x5ea4,
        seeds,
        ..RunOptions::default()
    }
}

#[test]
fn every_simulated_entry_produces_a_sane_report() {
    for entry in registry::registry() {
        if !entry.is_simulated() {
            continue;
        }
        let run = driver::execute(entry, &quick(3, 1));
        assert_eq!(
            run.reports.len(),
            entry.build_grid().len(),
            "{}: one report per grid point",
            entry.name
        );
        assert!(!run.table.is_empty(), "{}: empty table", entry.name);
        for r in &run.reports {
            assert!(
                r.good.generated + r.bad.generated > 0,
                "{}: run {} generated no requests",
                entry.name,
                r.name
            );
            assert!(
                (0.0..=1.0).contains(&r.server_utilization),
                "{}: utilization {} out of range",
                entry.name,
                r.server_utilization
            );
            assert!(
                (r.duration_s - 3.0).abs() < 1e-9,
                "{}: duration override not applied",
                entry.name
            );
            let served: u64 = r.per_client.iter().map(|pc| pc.served).sum();
            assert!(
                served <= r.good.generated + r.bad.generated,
                "{}: served more than generated",
                entry.name
            );
        }
    }
}

#[test]
fn analytic_entries_render_tables_and_json() {
    for entry in registry::registry() {
        if entry.is_simulated() {
            continue;
        }
        // Short "duration" scales the measurement down so this stays fast.
        let run = driver::execute(entry, &quick(5, 1));
        assert!(
            run.reports.is_empty(),
            "{}: analytic entries simulate nothing",
            entry.name
        );
        assert!(!run.table.is_empty(), "{}: empty table", entry.name);
        let json = driver::entry_json(&run, &quick(5, 1)).pretty();
        assert!(
            json.contains("\"analysis\""),
            "{}: missing analysis payload",
            entry.name
        );
    }
}

#[test]
fn same_name_and_seed_is_deterministic_through_the_driver() {
    let entry = registry::find("fig3").expect("fig3 registered");
    let opts = quick(3, 2);
    let a = driver::execute(entry, &opts);
    let b = driver::execute(entry, &opts);
    assert_eq!(a.table, b.table, "human tables diverged");
    assert_eq!(
        driver::entry_json(&a, &opts).pretty(),
        driver::entry_json(&b, &opts).pretty(),
        "JSON reports diverged for identical name+seed"
    );
    // A different seed must actually change the trace (otherwise the
    // determinism check above would be vacuous). Compare only the run
    // payloads with seed metadata stripped, so recorded seed values can't
    // mask a simulation that ignores its seed.
    let other_opts = RunOptions {
        seed: 0x5ea4 + 100,
        ..opts.clone()
    };
    let other = driver::execute(entry, &other_opts);
    let payload = |run: &driver::EntryRun, o: &RunOptions| -> String {
        driver::entry_json(run, o)
            .pretty()
            .lines()
            .filter(|l| !l.contains("\"seed\"") && !l.contains("\"base_seed\""))
            .collect::<Vec<_>>()
            .join("\n")
    };
    assert_ne!(
        payload(&a, &opts),
        payload(&other, &other_opts),
        "changing the seed changed nothing in the simulated traces"
    );
}

#[test]
fn replicates_cover_the_requested_seeds() {
    let entry = registry::find("fig7").expect("fig7 registered");
    let opts = quick(3, 3);
    let run = driver::execute(entry, &opts);
    assert_eq!(run.reports.len(), 2 * 3, "grid × seeds reports");
    // Grid-major, seed-minor ordering with consecutive seeds.
    for (i, r) in run.reports.iter().enumerate() {
        assert_eq!(r.seed, 0x5ea4 + (i as u64 % 3), "replicate seed layout");
    }
    // The replicate table is appended for seeds > 1.
    assert!(run.table.contains("Seed replicates"));
}

#[test]
fn cli_command_round_trips_to_execution() {
    let args: Vec<String> = ["run", "fig6", "--secs", "3", "--seed", "9", "--json"]
        .iter()
        .map(|s| s.to_string())
        .collect();
    let cmd = driver::parse(&args).expect("parse");
    let Command::Run {
        names,
        opts,
        json_only,
    } = cmd
    else {
        panic!("expected run command");
    };
    assert_eq!(names, vec!["fig6"]);
    assert!(json_only);
    let mut out = Vec::new();
    let mut progress = Vec::new();
    driver::dispatch(
        &Command::Run {
            names,
            opts,
            json_only,
        },
        &mut out,
        &mut progress,
    )
    .expect("dispatch");
    let text = String::from_utf8(out).expect("utf8");
    assert!(text.trim_start().starts_with('{'), "JSON-only output");
    assert!(text.contains("\"experiment\": \"fig6\""));
    assert!(String::from_utf8(progress).unwrap().contains("fig6"));
}
