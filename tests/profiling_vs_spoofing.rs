//! Integration: the §8.1 taxonomy argument. Detect-and-block wins against
//! honest identities and loses to spoofing; speak-up doesn't care.

use speakup_exp::scenario::Mode;
use speakup_exp::scenarios::profiling_comparison;
use speakup_net::time::SimDuration;

fn run(mode: Mode, spoof: bool) -> speakup_exp::RunReport {
    speakup_exp::run(&profiling_comparison(mode, spoof).duration(SimDuration::from_secs(30)))
}

const PROFILE: Mode = Mode::Profile { allowed_rate: 3.0 };

#[test]
fn profiling_crushes_honest_bots() {
    let r = run(PROFILE, false);
    // Bad clients ask for 40/s each but are rate-limited to 3/s; good
    // clients (λ=2) fit inside the profile.
    assert!(
        r.good_fraction() > 0.3,
        "profiling should hold bad clients near their allowance: {}",
        r.good_fraction()
    );
    assert!(
        r.good_served_fraction() > 0.8,
        "good clients fit the profile: {}",
        r.good_served_fraction()
    );
    assert!(r.thinner_drops > 100, "bad excess must be blocked");
}

#[test]
fn spoofing_defeats_profiling() {
    let honest = run(PROFILE, false);
    let spoofed = run(PROFILE, true);
    assert!(
        spoofed.good_fraction() < honest.good_fraction() * 0.6,
        "fresh identities should sail through the rate limiter: {} vs {}",
        spoofed.good_fraction(),
        honest.good_fraction()
    );
}

#[test]
fn speakup_is_indifferent_to_spoofing() {
    let honest = run(Mode::Auction, false);
    let spoofed = run(Mode::Auction, true);
    // The auction charges bandwidth per request; identity games change
    // nothing material.
    assert!(
        (honest.good_fraction() - spoofed.good_fraction()).abs() < 0.1,
        "speak-up allocation moved under spoofing: {} vs {}",
        honest.good_fraction(),
        spoofed.good_fraction()
    );
    assert!(spoofed.good_fraction() > 0.3);
}

#[test]
fn spoofing_attackers_prefer_profiling_targets() {
    // The cross comparison the paper implies: against spoofing attackers,
    // a speak-up thinner protects the good clients better than a profiler.
    let profiled = run(PROFILE, true);
    let auctioned = run(Mode::Auction, true);
    assert!(
        auctioned.good_fraction() > profiled.good_fraction(),
        "speak-up should beat profiling under spoofing: {} vs {}",
        auctioned.good_fraction(),
        profiled.good_fraction()
    );
}
