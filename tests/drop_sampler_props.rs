//! The batched `DropSampler` must be unobservable: for any drop
//! probability and any RNG stream, the drop/survive decision sequence
//! it produces must be bit-identical to the per-packet
//! `rng.f64() < drop_prob` Bernoulli formulation it replaced — that
//! equivalence is what lets lossy-link goldens survive the batching.

use proptest::prelude::*;
use speakup_net::link::DropSampler;
use speakup_net::rng::Pcg32;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn batched_sampler_matches_per_packet_bernoulli(
        // Spans near-degenerate extremes at both ends: drop-heavy links
        // where every refill terminates immediately, and (below, in the
        // refill-boundary test) rare-drop links where a refill chunk
        // can end without finding a drop.
        drop_prob in 1e-6f64..0.999_999,
        seed in any::<u64>(),
        stream in any::<u64>(),
        packets in 1usize..4_000,
    ) {
        let mut sampler = DropSampler::new(Pcg32::new(seed, stream), drop_prob);
        let mut reference = Pcg32::new(seed, stream);
        for i in 0..packets {
            let batched = sampler.offer();
            let bernoulli = reference.f64() < drop_prob;
            prop_assert_eq!(
                batched, bernoulli,
                "decision {} diverged (p={}, seed={}, stream={})",
                i, drop_prob, seed, stream
            );
        }
    }

    #[test]
    fn sampler_never_reorders_across_refill_boundaries(
        // Exercise runs much longer than one refill chunk (1024 draws)
        // so several refills happen mid-sequence.
        drop_prob in 1e-5f64..1e-3,
        seed in any::<u64>(),
    ) {
        let mut sampler = DropSampler::new(Pcg32::new(seed, 7), drop_prob);
        let mut reference = Pcg32::new(seed, 7);
        let mut diverged = None;
        for i in 0..20_000usize {
            if sampler.offer() != (reference.f64() < drop_prob) {
                diverged = Some(i);
                break;
            }
        }
        prop_assert_eq!(diverged, None, "p={}, seed={}", drop_prob, seed);
    }
}
