//! Integration: the headline result (Figs 1–3). Speak-up allocates the
//! server roughly in proportion to bandwidth; without it, request rates
//! rule and bad clients dominate.

use speakup_core::client::ClientProfile;
use speakup_exp::scenario::{ClientSpec, Mode, Scenario};
use speakup_net::time::SimDuration;

fn attack(mode: Mode, n_good: usize, n_bad: usize, c: f64) -> Scenario {
    let mut s = Scenario::new(format!("attack {mode:?}"), c, mode);
    s.add_clients(n_good, ClientSpec::lan(ClientProfile::good()));
    s.add_clients(n_bad, ClientSpec::lan(ClientProfile::bad()));
    s.duration(SimDuration::from_secs(30))
}

#[test]
fn without_speakup_bad_clients_dominate() {
    let r = speakup_exp::run(&attack(Mode::Off, 5, 5, 20.0));
    // Bad clients request 20x faster; good should get well under a fifth.
    assert!(
        r.good_fraction() < 0.2,
        "good fraction {} unexpectedly high",
        r.good_fraction()
    );
    assert!(r.allocation.bad > 4 * r.allocation.good);
}

#[test]
fn with_speakup_allocation_tracks_bandwidth() {
    let r = speakup_exp::run(&attack(Mode::Auction, 5, 5, 20.0));
    // Equal bandwidth: ideal share 0.5; accept the paper's adversarial
    // advantage (good slightly below).
    assert!(
        (0.35..=0.60).contains(&r.good_fraction()),
        "good fraction {}",
        r.good_fraction()
    );
}

#[test]
fn speakup_improves_on_baseline_across_mixes() {
    for (n_good, n_bad) in [(2usize, 8usize), (5, 5), (8, 2)] {
        let off = speakup_exp::run(&attack(Mode::Off, n_good, n_bad, 20.0));
        let on = speakup_exp::run(&attack(Mode::Auction, n_good, n_bad, 20.0));
        assert!(
            on.good_fraction() > off.good_fraction(),
            "speak-up must help ({n_good}/{n_bad}): {} vs {}",
            on.good_fraction(),
            off.good_fraction()
        );
        let ideal = n_good as f64 / (n_good + n_bad) as f64;
        assert!(
            (on.good_fraction() - ideal).abs() < 0.2,
            "share {} too far from ideal {ideal}",
            on.good_fraction()
        );
    }
}

#[test]
fn unloaded_server_serves_everyone_for_free() {
    // Good demand 10 req/s against c = 100: no attack, no payment.
    let mut s = Scenario::new("unloaded", 100.0, Mode::Auction);
    s.add_clients(5, ClientSpec::lan(ClientProfile::good()));
    let s = s.duration(SimDuration::from_secs(20));
    let r = speakup_exp::run(&s);
    assert!(
        r.good_served_fraction() > 0.95,
        "{}",
        r.good_served_fraction()
    );
    assert!(
        r.price_good.mean() < 1000.0,
        "price should be ~0 unloaded, got {}",
        r.price_good.mean()
    );
}

#[test]
fn server_stays_saturated_under_attack() {
    let r = speakup_exp::run(&attack(Mode::Auction, 5, 5, 20.0));
    assert!(
        r.server_utilization > 0.95,
        "thinner must keep the server busy: {}",
        r.server_utilization
    );
}

#[test]
fn flash_crowd_behaves_like_an_attack() {
    // §9: all-good overload — speak-up still allocates by bandwidth and
    // keeps the server saturated.
    let mut s = Scenario::new("flash", 10.0, Mode::Auction);
    s.add_clients(10, ClientSpec::lan(ClientProfile::good()));
    let s = s.duration(SimDuration::from_secs(30));
    let r = speakup_exp::run(&s);
    assert!(r.server_utilization > 0.9);
    assert_eq!(r.allocation.bad, 0);
    assert!(r.allocation.good as f64 >= 10.0 * 30.0 * 0.8);
}
