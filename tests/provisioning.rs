//! Integration: §3.1/§7.4 provisioning arithmetic. With B = G, the
//! idealized requirement is c_id = 2g; generously above it all good
//! demand is served, well below it the good clients get their
//! proportional slice and no more.

use speakup_core::analysis::{ideal_good_service, ideal_provisioning};
use speakup_core::client::ClientProfile;
use speakup_exp::scenario::{ClientSpec, Mode, Scenario};
use speakup_net::time::SimDuration;

fn population(c: f64) -> Scenario {
    // 5 good (g = 10 req/s) + 5 bad, equal bandwidth: c_id = 20.
    let mut s = Scenario::new(format!("prov c={c}"), c, Mode::Auction);
    s.add_clients(5, ClientSpec::lan(ClientProfile::good()));
    s.add_clients(5, ClientSpec::lan(ClientProfile::bad()));
    s.duration(SimDuration::from_secs(30))
}

#[test]
fn formulas() {
    assert_eq!(ideal_provisioning(10.0, 1.0, 1.0), 20.0);
    assert_eq!(ideal_good_service(10.0, 1.0, 1.0, 20.0), 10.0);
    assert_eq!(ideal_good_service(10.0, 1.0, 1.0, 10.0), 5.0);
}

#[test]
fn generous_capacity_serves_all_good_demand() {
    // 2x the ideal provisioning.
    let r = speakup_exp::run(&population(40.0));
    assert!(
        r.good_served_fraction() > 0.95,
        "good served {}",
        r.good_served_fraction()
    );
}

#[test]
fn scarce_capacity_gives_proportional_slice() {
    // Half the ideal provisioning: good can get at most ~c/2 = 5 req/s
    // of their 10 req/s demand.
    let r = speakup_exp::run(&population(10.0));
    let served_rate = r.allocation.good as f64 / r.duration_s;
    assert!(
        (2.5..=6.0).contains(&served_rate),
        "good service rate {served_rate} req/s"
    );
    assert!(r.good_served_fraction() < 0.7);
}

#[test]
fn good_service_grows_monotonically_with_capacity() {
    let mut last = 0.0;
    for c in [10.0, 20.0, 30.0, 40.0] {
        let r = speakup_exp::run(&population(c));
        let served = r.allocation.good as f64;
        assert!(
            served >= last * 0.9, // allow stochastic wiggle
            "service should grow with c: {served} after {last} (c={c})"
        );
        last = served;
    }
}

#[test]
fn empirical_advantage_is_bounded() {
    // §7.4: bad clients can cheat proportional allocation, but only to a
    // limited extent. At c = 1.5 * c_id the good demand must be nearly
    // fully served (the paper needed just 1.15x; our bad clients waste
    // nothing, so give them headroom — but 1.5x must suffice).
    let r = speakup_exp::run(&population(30.0));
    assert!(
        r.good_served_fraction() > 0.9,
        "good served at 1.5x c_id: {}",
        r.good_served_fraction()
    );
}
