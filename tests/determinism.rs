//! Integration: reproducibility. Same scenario + same seed = identical
//! results, different seeds = (almost surely) different traces, and the
//! parallel runner matches the serial one.

use speakup_core::client::ClientProfile;
use speakup_exp::runner::run_all;
use speakup_exp::scenario::{ClientSpec, Mode, Scenario};
use speakup_net::time::SimDuration;

fn scenario(seed: u64) -> Scenario {
    let mut s = Scenario::new("det", 20.0, Mode::Auction);
    s.add_clients(3, ClientSpec::lan(ClientProfile::good()));
    s.add_clients(3, ClientSpec::lan(ClientProfile::bad()));
    s.duration(SimDuration::from_secs(15)).seed(seed)
}

fn fingerprint(r: &speakup_exp::RunReport) -> (u64, u64, u64, u64) {
    (
        r.allocation.good,
        r.allocation.bad,
        r.payment_bytes_total,
        r.thinner_drops,
    )
}

#[test]
fn same_seed_same_trace() {
    let a = speakup_exp::run(&scenario(7));
    let b = speakup_exp::run(&scenario(7));
    assert_eq!(fingerprint(&a), fingerprint(&b));
    assert_eq!(a.price_good.values(), b.price_good.values());
    assert_eq!(
        a.good.latency.values(),
        b.good.latency.values(),
        "per-request latencies must match exactly"
    );
}

#[test]
fn different_seed_different_trace() {
    let a = speakup_exp::run(&scenario(1));
    let b = speakup_exp::run(&scenario(2));
    // Aggregate counts may collide; full latency vectors will not.
    assert_ne!(
        a.good.latency.values(),
        b.good.latency.values(),
        "different seeds should perturb the trace"
    );
}

#[test]
fn parallel_runner_matches_serial() {
    let scens = vec![scenario(3), scenario(4)];
    let par = run_all(&scens);
    let ser: Vec<_> = scens.iter().map(speakup_exp::run).collect();
    for (p, s) in par.iter().zip(&ser) {
        assert_eq!(fingerprint(p), fingerprint(s));
    }
}

#[test]
fn off_mode_is_deterministic_too() {
    let mk = || {
        let mut s = Scenario::new("det-off", 20.0, Mode::Off);
        s.add_clients(4, ClientSpec::lan(ClientProfile::bad()));
        speakup_exp::run(&s.duration(SimDuration::from_secs(10)).seed(9))
    };
    let a = mk();
    let b = mk();
    assert_eq!(fingerprint(&a), fingerprint(&b));
}
