//! Integration: the currency works like §3.3/§7.3 says — prices emerge,
//! stay under the (G+B)/c bound, fall when capacity rises, and the
//! payment-time latency cost behaves like Figure 4.

use speakup_core::client::ClientProfile;
use speakup_exp::scenario::{ClientSpec, Mode, Scenario};
use speakup_exp::RunReport;
use speakup_net::time::SimDuration;

fn run(c: f64) -> (Scenario, RunReport) {
    let mut s = Scenario::new(format!("pay c={c}"), c, Mode::Auction);
    s.add_clients(5, ClientSpec::lan(ClientProfile::good()));
    s.add_clients(5, ClientSpec::lan(ClientProfile::bad()));
    let s = s.duration(SimDuration::from_secs(30));
    let r = speakup_exp::run(&s);
    (s, r)
}

#[test]
fn price_stays_below_upper_bound() {
    let (s, r) = run(20.0);
    let ub = s.price_upper_bound();
    assert!(r.price_good.len() > 10);
    assert!(
        r.price_good.mean() <= ub,
        "good price {} above bound {ub}",
        r.price_good.mean()
    );
    assert!(
        r.price_bad.mean() <= ub * 1.1, // bad may overpay slightly
        "bad price {} way above bound {ub}",
        r.price_bad.mean()
    );
    // But the price is real: a meaningful fraction of the bound.
    assert!(
        r.price_good.mean() > 0.2 * ub,
        "price {} suspiciously low vs bound {ub}",
        r.price_good.mean()
    );
}

#[test]
fn price_falls_as_capacity_rises() {
    let (_, scarce) = run(10.0);
    let (_, ample) = run(40.0);
    assert!(
        scarce.price_good.mean() > 1.5 * ample.price_good.mean(),
        "price should fall with capacity: {} vs {}",
        scarce.price_good.mean(),
        ample.price_good.mean()
    );
}

#[test]
fn payment_time_falls_as_capacity_rises() {
    let (_, scarce) = run(10.0);
    let (_, ample) = run(40.0);
    let t_scarce = scarce.good.payment_time.mean();
    let t_ample = ample.good.payment_time.mean();
    assert!(
        t_scarce > t_ample,
        "payment time should fall with capacity: {t_scarce} vs {t_ample}"
    );
}

#[test]
fn payment_bytes_flow_only_under_speakup() {
    let (_, on) = run(20.0);
    assert!(on.payment_bytes_total > 1_000_000);

    let mut s = Scenario::new("off", 20.0, Mode::Off);
    s.add_clients(5, ClientSpec::lan(ClientProfile::good()));
    s.add_clients(5, ClientSpec::lan(ClientProfile::bad()));
    let off = speakup_exp::run(&s.duration(SimDuration::from_secs(20)));
    assert_eq!(off.payment_bytes_total, 0);
}

#[test]
fn ninetieth_percentile_payment_time_exceeds_mean() {
    let (_, r) = run(10.0);
    let mut t = r.good.payment_time.clone();
    assert!(t.len() > 10);
    assert!(t.percentile(90.0) >= t.mean() * 0.9);
}

#[test]
fn aggregate_payment_respects_aggregate_bandwidth() {
    // Total payment bytes over the run cannot exceed what the access
    // links could physically carry.
    let (s, r) = run(10.0);
    let capacity_bytes = (s.good_bandwidth_bps() + s.bad_bandwidth_bps()) as f64 / 8.0 * 30.0;
    assert!(
        (r.payment_bytes_total as f64) < capacity_bytes,
        "payment {} exceeds physical capacity {capacity_bytes}",
        r.payment_bytes_total
    );
    // ... and under full contention it should use a good chunk of it.
    assert!(
        (r.payment_bytes_total as f64) > 0.25 * capacity_bytes,
        "payment {} suspiciously small vs capacity {capacity_bytes}",
        r.payment_bytes_total
    );
}
