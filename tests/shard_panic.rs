//! Barrier poisoning: a shard whose application panics must abort the
//! whole run, resurfacing the *original* panic message — never hang its
//! peers at the window-exchange barrier, and never replace the payload
//! with a generic "a scoped thread panicked".
//!
//! The engine's own unit tests cover a timer-driven panic on a client
//! shard; these exercise the remaining directions through the public
//! API: a panic on the infrastructure shard (shard 0) while client
//! shards are mid-stream, and a panic fired by a cross-shard message
//! arrival (so the barrier is poisoned with peer traffic in flight).

use speakup_net::link::LinkConfig;
use speakup_net::packet::{FlowId, NodeId};
use speakup_net::sim::{App, Ctx, Simulator};
use speakup_net::time::{SimDuration, SimTime};
use speakup_net::topology::{Topology, TopologyBuilder};

/// Uploads one `bytes`-sized message to `dst`; big uploads keep the
/// barriers busy, a small one delivers (and detonates a bomb) quickly.
struct Uploader {
    dst: NodeId,
    bytes: u64,
}

impl App for Uploader {
    fn start(&mut self, ctx: &mut Ctx) {
        let f = ctx.open_default_flow(self.dst);
        ctx.send(f, self.bytes, 1);
    }
}

/// Panics the moment a complete message is delivered to it.
struct MessageBomb;

impl App for MessageBomb {
    fn on_message(&mut self, _ctx: &mut Ctx, _flow: FlowId, _tag: u64) {
        panic!("hub app exploded on message");
    }
}

/// Panics on a timer while other shards stream traffic through it.
struct TimerBomb;

impl App for TimerBomb {
    fn start(&mut self, ctx: &mut Ctx) {
        ctx.set_timer(SimDuration::from_millis(40), 7);
    }
    fn on_timer(&mut self, _ctx: &mut Ctx, _token: u64) {
        panic!("infra shard exploded on timer");
    }
}

/// A hub with four 2 Mbit/s leaves at 2..5 ms one-way delay.
fn star() -> (Topology, NodeId, Vec<NodeId>) {
    let mut b = TopologyBuilder::new();
    let hub = b.node();
    let leaves: Vec<NodeId> = (0..4)
        .map(|i| {
            let n = b.node();
            b.duplex(
                n,
                hub,
                LinkConfig::new(2_000_000, SimDuration::from_millis(2 + i)),
            );
            n
        })
        .collect();
    (b.build(), hub, leaves)
}

#[test]
#[should_panic(expected = "hub app exploded on message")]
fn cross_shard_message_panic_aborts_the_run_with_its_message() {
    let (t, hub, leaves) = star();
    // Hub alone on shard 0; a small message from a shard-2 leaf crosses
    // the barrier and detonates the receiver mid-window.
    let mut sim = Simulator::new_sharded(t, 11, vec![0, 1, 1, 2, 2]);
    for (i, &n) in leaves.iter().enumerate() {
        // Leaf 3 (shard 2) delivers a small message within milliseconds;
        // the rest are still mid-upload when the hub detonates.
        let bytes = if i == 3 { 1_000 } else { 5_000_000 };
        sim.add_app(n, Box::new(Uploader { dst: hub, bytes }));
    }
    sim.add_app(hub, Box::new(MessageBomb));
    // Without barrier poisoning the three surviving shards would park
    // forever waiting for shard 0 and this test would time out instead
    // of observing the panic.
    sim.run_until(SimTime::from_secs(30));
}

#[test]
#[should_panic(expected = "infra shard exploded on timer")]
fn shard_zero_panic_releases_streaming_client_shards() {
    let (t, hub, leaves) = star();
    let mut sim = Simulator::new_sharded(t, 12, vec![0, 1, 2, 3, 4]);
    for &n in &leaves {
        sim.add_app(
            n,
            Box::new(Uploader {
                dst: hub,
                bytes: 5_000_000,
            }),
        );
    }
    sim.add_app(hub, Box::new(TimerBomb));
    sim.run_until(SimTime::from_secs(30));
}
