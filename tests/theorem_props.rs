//! Property tests on Theorem 3.1's guarantee and the §3.1 formulas:
//! no adversary schedule the generator can produce pushes a continuous
//! ε-bidder below ε/(2−ε), and the analytical formulas respect their
//! algebraic identities.

use proptest::prelude::*;
use speakup_core::analysis::{
    ideal_good_service, ideal_provisioning, play_auction_game, proportional_share, theorem_bound,
    AdversaryStrategy,
};

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn random_adversaries_respect_the_floor(
        eps in 0.02f64..0.9,
        seed in any::<u64>(),
    ) {
        let o = play_auction_game(eps, 30_000, &AdversaryStrategy::Random { seed });
        let floor = theorem_bound(eps);
        prop_assert!(
            o.x_fraction >= floor * 0.97,
            "eps={eps} seed={seed}: {} < {floor}", o.x_fraction
        );
    }

    #[test]
    fn bursty_adversaries_respect_the_floor(
        eps in 0.02f64..0.9,
        period in 1usize..50,
    ) {
        let o = play_auction_game(eps, 30_000, &AdversaryStrategy::Bursty { period });
        let floor = theorem_bound(eps);
        prop_assert!(
            o.x_fraction >= floor * 0.97,
            "eps={eps} period={period}: {} < {floor}", o.x_fraction
        );
    }

    #[test]
    fn just_enough_respects_but_approaches_the_floor(eps in 0.05f64..0.9) {
        let o = play_auction_game(eps, 50_000, &AdversaryStrategy::JustEnough);
        let floor = theorem_bound(eps);
        prop_assert!(o.x_fraction >= floor * 0.97);
        // The pessimal adversary keeps X well below its proportional share
        // eps and in the floor's neighbourhood (the discrete game can sit a
        // couple of steps above the continuous bound).
        prop_assert!(
            o.x_fraction <= (floor * 1.8 + 0.02).min(eps + 0.02),
            "eps={eps}: {} far above floor {floor} — bound not tight?", o.x_fraction
        );
    }

    #[test]
    fn bound_is_monotone_and_within_eps(eps in 0.0f64..1.0) {
        let b = theorem_bound(eps);
        prop_assert!(b >= eps / 2.0 - 1e-12);
        prop_assert!(b <= eps + 1e-12);
    }

    #[test]
    fn provisioning_formula_identities(
        g in 0.1f64..1000.0,
        big_g in 0.1f64..1000.0,
        big_b in 0.0f64..1000.0,
    ) {
        let cid = ideal_provisioning(g, big_g, big_b);
        // At exactly cid, the proportional slice equals the demand.
        let served = ideal_good_service(g, big_g, big_b, cid);
        prop_assert!((served - g).abs() < 1e-6 * g.max(1.0));
        // Above cid the demand caps service; below, proportionality does.
        prop_assert!(ideal_good_service(g, big_g, big_b, cid * 2.0) == g);
        let below = ideal_good_service(g, big_g, big_b, cid / 2.0);
        prop_assert!(below <= g * (0.5 + 1e-9));
    }

    #[test]
    fn shares_partition(big_g in 0.0f64..1e9, big_b in 0.0f64..1e9) {
        prop_assume!(big_g + big_b > 0.0);
        let s = proportional_share(big_g, big_b) + proportional_share(big_b, big_g);
        prop_assert!((s - 1.0).abs() < 1e-9);
    }

    #[test]
    fn x_wins_all_auctions_against_empty_adversary(
        rounds in 1u64..5000,
    ) {
        let o = play_auction_game(1.0, rounds, &AdversaryStrategy::Uniform);
        prop_assert_eq!(o.x_wins, rounds);
    }
}
