//! Property tests on the substrate: the transport's reliability
//! invariants under arbitrary loss/reordering, the event queue's
//! ordering guarantees, and link conservation laws.

use proptest::prelude::*;
use speakup_net::event::EventQueue;
use speakup_net::link::{Enqueue, Link, LinkConfig};
use speakup_net::packet::{FlowId, NodeId, Packet, PacketKind};
use speakup_net::tcp::{Flow, FlowAction, FlowConfig};
use speakup_net::time::{SimDuration, SimTime};

/// Drive a sender/receiver pair over a lossy, reordering "wire" encoded
/// by `script`: for each emitted data segment, the next script byte
/// decides drop (0), deliver now (1), or delay into a reorder buffer (2).
fn deliver_with_script(total_bytes: u64, script: &[u8]) -> (u64, u64) {
    let cfg = FlowConfig::default();
    let mut f = Flow::new(FlowId(0), NodeId(0), NodeId(1), cfg);
    let mut out = Vec::new();
    let mut now_ms = 0u64;
    let t = |ms: u64| SimTime::from_nanos(ms * 1_000_000);
    f.write(t(0), total_bytes, 1, &mut out);

    let mut si = 0usize;
    let mut held: Vec<(u64, u32)> = Vec::new();
    let mut steps = 0;
    while !f.is_drained() && steps < 100_000 {
        steps += 1;
        now_ms += 10;
        let actions: Vec<FlowAction> = std::mem::take(&mut out);
        let mut acks = Vec::new();
        for a in actions {
            if let FlowAction::SendData { offset, len } = a {
                let verdict = script.get(si).copied().unwrap_or(1) % 3;
                si += 1;
                match verdict {
                    0 => {} // dropped
                    1 => {
                        let mut rx = Vec::new();
                        f.on_data(t(now_ms), offset, len, &mut rx);
                        for r in rx {
                            if let FlowAction::SendAck { cum } = r {
                                acks.push(cum);
                            }
                        }
                    }
                    _ => held.push((offset, len)),
                }
            }
        }
        // Every few steps, flush the reorder buffer in reverse order.
        if steps % 3 == 0 {
            for (offset, len) in held.drain(..).rev() {
                let mut rx = Vec::new();
                f.on_data(t(now_ms), offset, len, &mut rx);
                for r in rx {
                    if let FlowAction::SendAck { cum } = r {
                        acks.push(cum);
                    }
                }
            }
        }
        for cum in acks {
            f.on_ack(t(now_ms), cum, &mut out);
        }
        // Fire the retransmission timer when progress stalls.
        if out.is_empty() && !f.is_drained() {
            now_ms += 2000;
            f.on_rto(t(now_ms), &mut out);
        }
    }
    (f.acked_bytes(), f.delivered_bytes())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn transport_delivers_everything_despite_loss_and_reordering(
        kb in 1u64..64,
        script in proptest::collection::vec(any::<u8>(), 0..2048),
    ) {
        let total = kb * 1024;
        let (acked, delivered) = deliver_with_script(total, &script);
        prop_assert_eq!(acked, total, "sender fully acked");
        prop_assert_eq!(delivered, total, "receiver fully delivered");
    }

    #[test]
    fn event_queue_pops_sorted(times in proptest::collection::vec(0u64..1_000_000, 1..500)) {
        let mut q = EventQueue::new();
        for (i, &t) in times.iter().enumerate() {
            q.push(SimTime::from_nanos(t), i);
        }
        let mut last = SimTime::ZERO;
        let mut n = 0;
        while let Some((t, _)) = q.pop() {
            prop_assert!(t >= last);
            last = t;
            n += 1;
        }
        prop_assert_eq!(n, times.len());
    }

    #[test]
    fn event_queue_same_time_fifo(n in 1usize..200) {
        let mut q = EventQueue::new();
        let t = SimTime::from_secs(1);
        for i in 0..n {
            q.push(t, i);
        }
        for i in 0..n {
            prop_assert_eq!(q.pop().unwrap().1, i);
        }
    }

    #[test]
    fn link_conserves_packets(
        sizes in proptest::collection::vec(40u32..1500, 1..200),
        queue_pkts in 1u64..64,
    ) {
        let cfg = LinkConfig::new(1_000_000, SimDuration::from_millis(1))
            .queue_packets(queue_pkts);
        let mut link = Link::new(cfg, NodeId(1));
        let mut started = 0u64;
        let mut queued = 0u64;
        let mut dropped = 0u64;
        for &size in &sizes {
            let p = Packet {
                flow: FlowId(0),
                src: NodeId(0),
                dst: NodeId(1),
                size,
                kind: PacketKind::Data { offset: 0, len: size - 40 },
            };
            match link.enqueue(p, 1.0) {
                Enqueue::StartTx(_) => started += 1,
                Enqueue::Queued => queued += 1,
                Enqueue::Dropped => dropped += 1,
            }
        }
        prop_assert_eq!(started + queued + dropped, sizes.len() as u64);
        // Drain: every started/queued packet comes out exactly once.
        let mut drained = 0u64;
        if link.is_busy() {
            loop {
                let (_, next) = link.tx_done();
                drained += 1;
                if next.is_none() {
                    break;
                }
            }
        }
        prop_assert_eq!(drained, started + queued);
        prop_assert_eq!(link.stats.drops_overflow, dropped);
        prop_assert_eq!(link.queued_bytes(), 0);
    }

    #[test]
    fn rng_uniform_bounds(seed in any::<u64>(), lo in 0u64..1000, span in 0u64..1000) {
        let mut rng = speakup_net::rng::Pcg32::seeded(seed);
        let hi = lo + span;
        for _ in 0..100 {
            let x = rng.range_u64(lo, hi);
            prop_assert!((lo..=hi).contains(&x));
        }
    }
}
