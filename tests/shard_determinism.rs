//! Shard-count invariance: the headline guarantee of the sharded engine.
//!
//! For every simulated registry entry, running the whole grid with
//! `--shards 1` and `--shards 4` must produce *byte-identical* human
//! tables and JSON reports — sharding may only change wall-clock time,
//! never results. (The lookahead-barrier "never deliver early" property
//! is asserted inside the engine on every exchange and unit-tested in
//! `speakup-net`.)

use speakup_exp::driver::{entry_json, execute};
use speakup_exp::registry::{self, RunOptions};
use speakup_exp::runner::run_sharded;
use speakup_exp::scenario::Mode;
use speakup_exp::scenarios;
use speakup_net::time::SimDuration;

fn opts(seconds: u64, shards: u32) -> RunOptions {
    RunOptions {
        duration: Some(SimDuration::from_secs(seconds)),
        seed: 0x5ea4,
        seeds: 1,
        jobs: Some(1),
        shards,
        thinners: None,
        sync_period: None,
        faults: Vec::new(),
    }
}

#[test]
fn every_entry_is_shard_count_invariant() {
    for entry in registry::registry() {
        if !entry.is_simulated() {
            continue;
        }
        let single = execute(entry, &opts(2, 1));
        let sharded = execute(entry, &opts(2, 4));
        assert_eq!(
            single.table, sharded.table,
            "{}: human tables differ between --shards 1 and --shards 4",
            entry.name
        );
        let a = entry_json(&single, &opts(2, 1)).pretty();
        let b = entry_json(&sharded, &opts(2, 4)).pretty();
        assert_eq!(
            a, b,
            "{}: JSON reports differ between --shards 1 and --shards 4",
            entry.name
        );
    }
}

#[test]
fn replicates_are_shard_count_invariant_too() {
    // Seed replicates exercise the worker pool + sharding together.
    let entry = registry::find("flash_crowd").expect("registered");
    let mut with_seeds = opts(2, 1);
    with_seeds.seeds = 3;
    let mut sharded = opts(2, 3);
    sharded.seeds = 3;
    let a = execute(entry, &with_seeds);
    let b = execute(entry, &sharded);
    assert_eq!(a.table, b.table);
    assert_eq!(
        entry_json(&a, &with_seeds).pretty(),
        entry_json(&b, &sharded).pretty()
    );
}

#[test]
fn shards_beyond_the_client_count_still_work() {
    // More shards than placement units: the runner clamps the shard
    // count (profiling has 10 single-client groups, so 16 clamps to 11)
    // instead of spinning node-less loops, without changing results.
    let entry = registry::find("profiling").expect("registered");
    let a = execute(entry, &opts(2, 1));
    let b = execute(entry, &opts(2, 16));
    assert_eq!(
        entry_json(&a, &opts(2, 1)).pretty(),
        entry_json(&b, &opts(2, 16)).pretty()
    );
}

#[test]
fn oversized_shard_requests_clamp_instead_of_spinning() {
    // Regression for the node-less-shard bug: fig2's 50 clients form 16
    // aggregation groups, so `--shards 64` must clamp to 17 event loops
    // (and warn once) rather than leave 47 empty shards hitting every
    // barrier window — while staying byte-identical to a single loop.
    let entry = registry::find("fig2").expect("registered");
    let single = execute(entry, &opts(2, 1));
    let oversized = execute(entry, &opts(2, 64));
    assert_eq!(
        single.table, oversized.table,
        "fig2: tables differ between --shards 1 and --shards 64"
    );
    assert_eq!(
        entry_json(&single, &opts(2, 1)).pretty(),
        entry_json(&oversized, &opts(2, 64)).pretty(),
        "fig2: JSON reports differ between --shards 1 and --shards 64"
    );
    for report in &oversized.reports {
        assert_eq!(
            report.shard_events.len(),
            17,
            "effective shard count should be 16 groups + infra shard 0"
        );
    }
}

#[test]
fn dispatch_counts_are_shard_invariant_and_fully_devirtualized() {
    // The devirtualized `AppSet` layer tallies events per app variant.
    // Two checks ride on those counters: sharding must not change what
    // gets dispatched where (the counts are part of the deterministic
    // outcome, not a scheduling artifact), and a scenario built from
    // registry agents must route every callback through a concrete enum
    // variant — the `boxed` escape hatch exists for out-of-tree apps
    // and must stay cold in every shipped scenario.
    let mut sc = scenarios::fig2(0.5, Mode::Auction);
    sc.duration = SimDuration::from_secs(2);
    let single = run_sharded(&sc, 1);
    let sharded = run_sharded(&sc, 4);
    assert_eq!(
        single.dispatch_counts, sharded.dispatch_counts,
        "per-variant dispatch counts differ between --shards 1 and --shards 4"
    );
    let concrete: u64 = single
        .dispatch_counts
        .iter()
        .filter(|(name, _)| *name != "boxed")
        .map(|(_, n)| n)
        .sum();
    assert!(concrete > 0, "no concrete-variant dispatches recorded");
    for (name, count) in &single.dispatch_counts {
        if *name == "boxed" {
            assert_eq!(
                *count, 0,
                "fig2 dispatched {count} events through the boxed fallback"
            );
        }
    }
}
