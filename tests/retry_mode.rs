//! Integration: the §3.2 variant (random drops + aggressive retries)
//! also implements the design goal, with the price denominated in
//! retries.

use speakup_core::client::ClientProfile;
use speakup_exp::scenario::{ClientSpec, Mode, Scenario};
use speakup_net::time::SimDuration;

fn attack(mode: Mode) -> Scenario {
    let mut s = Scenario::new(format!("retry {mode:?}"), 20.0, mode);
    s.add_clients(5, ClientSpec::lan(ClientProfile::good()));
    s.add_clients(5, ClientSpec::lan(ClientProfile::bad()));
    s.duration(SimDuration::from_secs(30))
}

#[test]
fn retries_restore_rough_proportionality() {
    let off = speakup_exp::run(&attack(Mode::Off));
    let retry = speakup_exp::run(&attack(Mode::Retry));
    assert!(
        retry.good_fraction() > 2.0 * off.good_fraction(),
        "retries must beat the baseline: {} vs {}",
        retry.good_fraction(),
        off.good_fraction()
    );
    assert!(
        (0.3..=0.7).contains(&retry.good_fraction()),
        "roughly proportional: {}",
        retry.good_fraction()
    );
}

#[test]
fn retry_mode_keeps_server_busy() {
    let r = speakup_exp::run(&attack(Mode::Retry));
    assert!(
        r.server_utilization > 0.8,
        "p-admission shouldn't idle the server much: {}",
        r.server_utilization
    );
}

#[test]
fn retry_payment_is_in_band_and_bandwidth_bounded() {
    // Both mechanisms make clients spend their bandwidth — that's the
    // point. The retry stream just denominates it in request-sized
    // messages instead of dummy-byte POSTs.
    let r = speakup_exp::run(&attack(Mode::Retry));
    assert!(r.payment_bytes_total > 1_000_000);
    // Physical ceiling: 10 clients x 2 Mbit/s x 30 s of payload.
    let ceiling = 10.0 * 2_000_000.0 / 8.0 * 30.0;
    assert!(
        (r.payment_bytes_total as f64) < ceiling,
        "payment {} exceeds the access links' capacity {ceiling}",
        r.payment_bytes_total
    );
    // The emergent price is real: multiple retries per admission.
    assert!(
        r.price_good.mean() > 2.0 * 400.0,
        "price {} should be several retries' worth of bytes",
        r.price_good.mean()
    );
}
