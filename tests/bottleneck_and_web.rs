//! Integration: §7.6/§7.7 — shared bottlenecks. Bad clients crowd good
//! ones out of a shared link, and speak-up traffic inflates bystander
//! download latency.

use speakup_core::client::ClientProfile;
use speakup_exp::scenario::{BottleneckSpec, ClientSpec, Mode, Scenario, WebSpec};
use speakup_net::time::SimDuration;

#[test]
fn bad_clients_hog_a_shared_bottleneck() {
    // 2 good + 6 bad behind a link that carries half their access sum;
    // 2 good + 2 bad direct. c = 20.
    let mut s = Scenario::new("bottleneck", 20.0, Mode::Auction);
    s.bottleneck = Some(BottleneckSpec {
        rate_bps: 8_000_000,
        delay: SimDuration::from_micros(500),
        queue_packets: 50,
    });
    s.add_clients(2, ClientSpec::lan(ClientProfile::good()).bottlenecked());
    s.add_clients(6, ClientSpec::lan(ClientProfile::bad()).bottlenecked());
    s.add_clients(2, ClientSpec::lan(ClientProfile::good()));
    s.add_clients(2, ClientSpec::lan(ClientProfile::bad()));
    let r = speakup_exp::run(&s.duration(SimDuration::from_secs(40)));

    let (mut bg, mut bb) = (0u64, 0u64);
    for pc in &r.per_client {
        if pc.behind_bottleneck {
            if pc.is_bad {
                bb += pc.served;
            } else {
                bg += pc.served;
            }
        }
    }
    let headcount_ideal = 2.0 / 8.0;
    let good_share = bg as f64 / (bg + bb).max(1) as f64;
    assert!(
        good_share < headcount_ideal,
        "good behind the bottleneck should get less than their headcount \
         share: {good_share} vs {headcount_ideal}"
    );
    // The server itself is still protected: bottlenecked clients cannot
    // take more than the bottleneck lets them pay for.
    assert!(r.server_utilization > 0.9);
}

#[test]
fn speakup_traffic_inflates_bystander_downloads() {
    let mk = |on: bool| {
        let mode = if on { Mode::Auction } else { Mode::Off };
        let mut s = Scenario::new("web", 2.0, mode);
        s.bottleneck = Some(BottleneckSpec {
            rate_bps: 1_000_000,
            delay: SimDuration::from_millis(100),
            queue_packets: 100,
        });
        s.add_clients(5, ClientSpec::lan(ClientProfile::good()).bottlenecked());
        s.web = Some(WebSpec {
            file_bytes: 8 * 1024,
            downloads: 30,
        });
        s.duration(SimDuration::from_secs(60))
    };
    let off = speakup_exp::run(&mk(false));
    let on = speakup_exp::run(&mk(true));
    let l_off = off.wget_latencies.expect("wget data");
    let l_on = on.wget_latencies.expect("wget data");
    assert!(l_off.len() >= 10);
    assert!(l_on.len() >= 5);
    assert!(
        l_on.mean() > 1.5 * l_off.mean(),
        "speak-up should visibly inflate download latency: {} vs {}",
        l_on.mean(),
        l_off.mean()
    );
}

#[test]
fn bottleneck_caps_what_attackers_can_spend() {
    // §4.2: "the server is still protected (the bad client can spend at
    // most l)". Squeeze 6 attackers into 2 Mbit/s and the good clients
    // do measurably better than when the same attackers are unconstrained
    // (12 Mbit/s aggregate).
    let mk = |squeeze: bool| {
        let mut s = Scenario::new("capped", 10.0, Mode::Auction);
        s.bottleneck = Some(BottleneckSpec {
            rate_bps: 2_000_000,
            delay: SimDuration::from_micros(500),
            queue_packets: 50,
        });
        let bad = ClientSpec::lan(ClientProfile::bad());
        s.add_clients(6, if squeeze { bad.bottlenecked() } else { bad });
        s.add_clients(2, ClientSpec::lan(ClientProfile::good()));
        s.duration(SimDuration::from_secs(40))
    };
    let squeezed = speakup_exp::run(&mk(true));
    let open = speakup_exp::run(&mk(false));
    assert!(
        squeezed.good_fraction() > 1.5 * open.good_fraction(),
        "the link cap should help the good clients: {} vs {}",
        squeezed.good_fraction(),
        open.good_fraction()
    );
    // Bandwidth arithmetic: good 4 Mbit/s vs capped bad ~2 Mbit/s ⇒ good
    // can claim up to ~2/3; being demand-limited (λ=2, w=1) they land
    // between the open-attack share and that ceiling.
    assert!(
        (0.25..=0.70).contains(&squeezed.good_fraction()),
        "squeezed-attack share {}",
        squeezed.good_fraction()
    );
}

#[test]
fn speakup_survives_lossy_access_links() {
    // §4's congestion-control claim, stress-tested: 2% random loss on
    // every good client's uplink. Payments still flow (reliably, thanks
    // to retransmission) and the allocation stays in the proportional
    // neighbourhood, slightly tilted toward the loss-free attackers.
    let mut s = Scenario::new("lossy", 20.0, Mode::Auction);
    s.add_clients(5, ClientSpec::lan(ClientProfile::good()).lossy(0.02));
    s.add_clients(5, ClientSpec::lan(ClientProfile::bad()));
    let r = speakup_exp::run(&s.duration(SimDuration::from_secs(40)));
    assert!(
        (0.2..=0.55).contains(&r.good_fraction()),
        "lossy good clients share: {}",
        r.good_fraction()
    );
    // And loss on everyone is symmetric again.
    let mut s2 = Scenario::new("lossy-both", 20.0, Mode::Auction);
    s2.add_clients(5, ClientSpec::lan(ClientProfile::good()).lossy(0.02));
    s2.add_clients(5, ClientSpec::lan(ClientProfile::bad()).lossy(0.02));
    let r2 = speakup_exp::run(&s2.duration(SimDuration::from_secs(40)));
    assert!(
        (0.3..=0.6).contains(&r2.good_fraction()),
        "symmetric loss share: {}",
        r2.good_fraction()
    );
    assert!(
        r2.good_fraction() >= r.good_fraction() - 0.05,
        "symmetric loss should not be worse for good clients"
    );
}
