//! Adversary lab: try to game the virtual auction (§3.4, Theorem 3.1).
//!
//! A good client X continuously bids an ε fraction of the thinner's
//! inbound bandwidth. The theorem guarantees X at least ε/(2−ε) ≥ ε/2 of
//! the service *whatever* the adversary does with the rest. This example
//! pits X against four canned schedules plus a brute-force random search
//! for something worse — and fails to break the bound.
//!
//! Run: `cargo run --release --example adversary_lab`

use speakup_core::analysis::{play_auction_game, theorem_bound, AdversaryStrategy};

fn main() {
    let eps = 0.2;
    let rounds = 200_000;
    println!(
        "adversary lab: eps = {eps}, {rounds} auctions, floor = {:.4}\n",
        theorem_bound(eps)
    );

    let named: [(&str, AdversaryStrategy); 4] = [
        ("uniform", AdversaryStrategy::Uniform),
        ("just-enough", AdversaryStrategy::JustEnough),
        ("bursty(5)", AdversaryStrategy::Bursty { period: 5 }),
        ("random(1)", AdversaryStrategy::Random { seed: 1 }),
    ];
    for (name, s) in &named {
        let o = play_auction_game(eps, rounds, s);
        println!(
            "{name:>12}: X wins {:.4} of auctions ({})",
            o.x_fraction,
            if o.x_fraction + 1e-9 >= theorem_bound(eps) {
                "respects the bound"
            } else {
                "BOUND VIOLATED ?!"
            }
        );
    }

    // Brute-force: many random schedules, keep the worst for X.
    let mut worst = f64::INFINITY;
    let mut worst_seed = 0;
    for seed in 0..200 {
        let o = play_auction_game(eps, 20_000, &AdversaryStrategy::Random { seed });
        if o.x_fraction < worst {
            worst = o.x_fraction;
            worst_seed = seed;
        }
    }
    println!(
        "\nworst of 200 random schedules: seed {worst_seed} pins X at {worst:.4} \
         (floor {:.4})",
        theorem_bound(eps)
    );
    println!(
        "the 'just-enough' schedule — watch X's bid, spend exactly enough to\n\
         beat it — is the proof's pessimal adversary; nothing random comes close,\n\
         and even it cannot push X below eps/(2-eps)."
    );
}
