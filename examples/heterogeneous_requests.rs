//! Heterogeneous requests (§5): why the thinner auctions *quanta*.
//!
//! Attackers know which requests are expensive (threat model §2.2) and
//! send only those. Under the plain §3.3 auction every admission costs
//! the same emergent price, so an attacker whose requests take 5× the
//! server time gets 5× the work per byte paid. The §5 front end holds an
//! auction every quantum τ and can SUSPEND/RESUME/ABORT, so a request
//! holds the server only while it keeps out-paying the contenders.
//!
//! Run: `cargo run --release --example heterogeneous_requests`

use speakup_exp::report::{frac, table};
use speakup_exp::runner::run_all;
use speakup_exp::scenario::Mode;
use speakup_exp::scenarios::heterogeneous_requests;
use speakup_net::time::SimDuration;

fn main() {
    let hard = 5.0;
    let d = SimDuration::from_secs(120);
    let scens = vec![
        heterogeneous_requests(Mode::Auction, hard).duration(d),
        heterogeneous_requests(
            Mode::Quantum {
                quantum: SimDuration::from_millis(10),
            },
            hard,
        )
        .duration(d),
    ];
    println!(
        "heterogeneous requests: 10 good (difficulty 1) vs 10 bad (difficulty {hard}),\n\
         equal bandwidth, c = 20 req/s, 120 s\n"
    );
    let reports = run_all(&scens);

    let mut rows = Vec::new();
    for r in &reports {
        let good_work = r.allocation.good as f64;
        let bad_work = r.allocation.bad as f64 * hard;
        rows.push(vec![
            r.mode.clone(),
            format!("{}", r.allocation.good),
            format!("{}", r.allocation.bad),
            frac(good_work / (good_work + bad_work)),
        ]);
    }
    println!(
        "{}",
        table(
            &[
                "front end",
                "good served",
                "bad served",
                "good share of WORK"
            ],
            &rows
        )
    );
    println!("\nideal (bandwidth-proportional) good share of work: 0.500");
    println!(
        "the quantum auction claws back most of what the hard-request attack\n\
         stole from the plain auction."
    );
}
