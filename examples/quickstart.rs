//! Quickstart: one application-level DDoS attack, with and without
//! speak-up.
//!
//! 10 good clients (λ=2, w=1) and 10 bad clients (λ=40, w=20), all with
//! 2 Mbit/s uplinks, attack a server that can handle 40 requests/second.
//! Without speak-up the bad clients' request rate dominates; with the
//! §3.3 virtual auction the allocation follows bandwidth — 50/50.
//!
//! Run: `cargo run --release --example quickstart`

use speakup_core::client::ClientProfile;
use speakup_exp::report::{frac, table};
use speakup_exp::runner::run_all;
use speakup_exp::scenario::{ClientSpec, Mode, Scenario};
use speakup_net::time::SimDuration;

fn scenario(mode: Mode) -> Scenario {
    let mut s = Scenario::new(format!("quickstart {mode:?}"), 40.0, mode);
    s.add_clients(10, ClientSpec::lan(ClientProfile::good()));
    s.add_clients(10, ClientSpec::lan(ClientProfile::bad()));
    s.duration(SimDuration::from_secs(60))
}

fn main() {
    println!("speak-up quickstart: 10 good + 10 bad clients, c = 40 req/s, 60 s\n");
    let reports = run_all(&[scenario(Mode::Off), scenario(Mode::Auction)]);

    let mut rows = Vec::new();
    for r in &reports {
        rows.push(vec![
            r.mode.clone(),
            format!("{}", r.allocation.good),
            format!("{}", r.allocation.bad),
            frac(r.good_fraction()),
            frac(r.good_served_fraction()),
        ]);
    }
    println!(
        "{}",
        table(
            &[
                "thinner",
                "good served",
                "bad served",
                "good share",
                "good demand met",
            ],
            &rows
        )
    );
    println!("\nbandwidth-proportional ideal good share: {:.2}", 0.5);
    println!(
        "the auction lifts the good clients from a ~{:.0}% sliver to roughly\n\
         their bandwidth share, as in the paper's Figure 1/Figure 2.",
        reports[0].good_fraction() * 100.0
    );
}
