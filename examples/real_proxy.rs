//! The thinner over real TCP sockets: spawn the proxy on loopback, throw
//! a small crowd of clients at an overloaded c = 4 server, and watch the
//! §3.3 exchange (encourage → POST dummy bytes → win → collect).
//!
//! Run: `cargo run --release --example real_proxy`

use speakup_core::thinner::AuctionConfig;
use speakup_net::time::SimDuration;
use speakup_proxy::client::{fetch, FetchConfig};
use speakup_proxy::{spawn, ProxyConfig};

fn main() {
    let proxy = spawn(ProxyConfig {
        capacity: 4.0,
        seed: 7,
        auction: AuctionConfig {
            channel_timeout: SimDuration::from_secs(5),
        },
    })
    .expect("spawn proxy");
    println!("thinner listening on {} (c = 4 req/s)\n", proxy.addr());

    let addr = proxy.addr();
    let clients: Vec<_> = (0..8)
        .map(|i| {
            std::thread::spawn(move || {
                let out = fetch(
                    addr,
                    i,
                    FetchConfig {
                        post_bytes: 64 * 1024,
                        ..FetchConfig::default()
                    },
                )
                .expect("fetch");
                (i, out)
            })
        })
        .collect();

    for c in clients {
        let (i, out) = c.join().expect("client");
        println!(
            "client {i}: {:?} after {} POSTs, {} payment bytes{}",
            out.verdict,
            out.posts,
            out.payment_bytes,
            match out.advertised_rate {
                Some(r) if out.posts > 0 => format!(" (going rate seen: {r})"),
                _ => String::new(),
            }
        );
    }

    let (served, dropped) = proxy.outcomes();
    println!(
        "\nproxy totals: served {served}, dropped {dropped}, sank {} payment bytes",
        proxy.payment_bytes()
    );
    assert_eq!(served + dropped, 8);
    proxy.shutdown();
    println!("proxy shut down cleanly");
}
