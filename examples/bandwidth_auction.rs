//! Bandwidth is the currency: clients with different uplinks receive
//! server shares proportional to what they can pay (paper §7.5, Fig 6).
//!
//! Five clients with 0.5, 1.0, 1.5, 2.0, 2.5 Mbit/s uplinks — all *good*,
//! all demanding far more than the c = 2 req/s server can do — end up
//! with shares close to 1/15, 2/15, ..., 5/15.
//!
//! Run: `cargo run --release --example bandwidth_auction`

use speakup_core::client::ClientProfile;
use speakup_exp::report::{frac, table};
use speakup_exp::scenario::{ClientSpec, Mode, Scenario};
use speakup_net::time::SimDuration;

fn main() {
    let mut s = Scenario::new("bandwidth auction", 2.0, Mode::Auction);
    for i in 1..=5u64 {
        s.add_clients(
            1,
            ClientSpec::lan(ClientProfile::good()).bandwidth(500_000 * i),
        );
    }
    let s = s.duration(SimDuration::from_secs(300));
    println!("bandwidth auction: 5 good clients, 0.5..2.5 Mbit/s, c = 2 req/s, 300 s\n");
    let r = speakup_exp::run(&s);

    let total: u64 = r.per_client.iter().map(|p| p.served).sum();
    let mut rows = Vec::new();
    for (i, pc) in r.per_client.iter().enumerate() {
        rows.push(vec![
            format!("{:.1} Mbit/s", 0.5 * (i as f64 + 1.0)),
            format!("{}", pc.served),
            frac(pc.served as f64 / total.max(1) as f64),
            frac((i as f64 + 1.0) / 15.0),
        ]);
    }
    println!(
        "{}",
        table(&["uplink", "served", "share", "ideal share"], &rows)
    );
    println!(
        "\nthe emergent price (going rate) needs no configuration: the thinner\n\
         just admits the highest bidder whenever the server frees up."
    );
}
